package obs

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the distributed-tracing core: 128-bit trace IDs and
// 64-bit span IDs, the W3C traceparent wire encoding, a per-request
// span tree (ReqTrace) cheap enough for the serve hot path, and a
// bounded lock-free ring buffer of recently completed request traces
// (TraceRing) behind mocktailsd's GET /debug/requests.
//
// Like the rest of the package, tracing is strictly write-only from
// the pipeline's point of view: trace IDs and spans never feed back
// into synthesis, so output bytes are identical with tracing on or
// off (pinned by the determinism test in this package).

// TraceID is a 128-bit trace identifier, hex-encoded on the wire.
type TraceID [16]byte

// String returns the 32-character lowercase hex encoding.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsZero reports whether the ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// SpanID is a 64-bit span identifier, hex-encoded on the wire.
type SpanID [8]byte

// String returns the 16-character lowercase hex encoding.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// IsZero reports whether the ID is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// idState is a crypto-seeded atomic counter whitened through the
// splitmix64 finalizer: ID generation is one atomic add plus a few
// multiplies — lock-free, unique within the process, and random-looking
// across processes (the seed and xor key differ per process).
var (
	idState atomic.Uint64
	idKey   uint64
)

func init() {
	var b [16]byte
	if _, err := crand.Read(b[:]); err != nil {
		// crypto/rand failing is essentially fatal elsewhere; here a
		// clock seed only weakens cross-process uniqueness of debug IDs.
		binary.LittleEndian.PutUint64(b[:8], uint64(time.Now().UnixNano()))
	}
	idState.Store(binary.LittleEndian.Uint64(b[0:8]))
	idKey = binary.LittleEndian.Uint64(b[8:16]) | 1
}

func randID64() uint64 {
	x := idState.Add(0x9e3779b97f4a7c15) ^ idKey
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// NewTraceID returns a fresh non-zero trace ID.
func NewTraceID() TraceID { return TraceIDFromUint64(randID64(), randID64()) }

// NewSpanID returns a fresh non-zero span ID.
func NewSpanID() SpanID { return SpanIDFromUint64(randID64()) }

// TraceIDFromUint64 builds a trace ID from two 64-bit words (big-endian
// hi then lo). The all-zero input is remapped to a valid ID, since the
// zero trace ID is invalid on the wire. Deterministic callers
// (internal/loadgen derives trace IDs from its seed so a slow request
// can be re-issued exactly) use this instead of NewTraceID.
func TraceIDFromUint64(hi, lo uint64) TraceID {
	var t TraceID
	binary.BigEndian.PutUint64(t[0:8], hi)
	binary.BigEndian.PutUint64(t[8:16], lo)
	if t.IsZero() {
		t[15] = 1
	}
	return t
}

// SpanIDFromUint64 builds a span ID from one 64-bit word, remapping the
// invalid all-zero input like TraceIDFromUint64.
func SpanIDFromUint64(v uint64) SpanID {
	var s SpanID
	binary.BigEndian.PutUint64(s[:], v)
	if s.IsZero() {
		s[7] = 1
	}
	return s
}

// ParseTraceID parses a 32-character hex trace ID (the X-Request-Id
// convention). ok is false for any other string or the all-zero ID.
func ParseTraceID(s string) (TraceID, bool) {
	var t TraceID
	if len(s) != 32 {
		return t, false
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil || t.IsZero() {
		return TraceID{}, false
	}
	return t, true
}

// FlagSampled is the W3C trace-flags bit marking a sampled trace.
const FlagSampled = 0x01

// SpanContext identifies one span within one trace — what travels on
// the wire in a traceparent header.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	Flags   byte
}

// Valid reports whether both IDs are non-zero.
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// Traceparent renders the context as a W3C traceparent header value:
// version 00, dash-separated lowercase hex.
func (sc SpanContext) Traceparent() string {
	return fmt.Sprintf("00-%s-%s-%02x", sc.TraceID, sc.SpanID, sc.Flags)
}

// ParseTraceparent parses a W3C traceparent header value:
// "<2 hex version>-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>".
// Per the spec, version ff is invalid, version 00 must be exactly that
// shape, and future versions are accepted if they start with it (extra
// version-specific fields after the flags are ignored). ok is false
// for anything else, including all-zero IDs.
func ParseTraceparent(s string) (SpanContext, bool) {
	var sc SpanContext
	if len(s) < 55 {
		return sc, false
	}
	var ver byte
	if !hexByte(s[0:2], &ver) || ver == 0xff {
		return sc, false
	}
	if ver == 0 && len(s) != 55 {
		return sc, false
	}
	if ver != 0 && len(s) > 55 && s[55] != '-' {
		return sc, false
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return sc, false
	}
	if _, err := hex.Decode(sc.TraceID[:], []byte(s[3:35])); err != nil {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(sc.SpanID[:], []byte(s[36:52])); err != nil {
		return SpanContext{}, false
	}
	if !hexByte(s[53:55], &sc.Flags) {
		return SpanContext{}, false
	}
	if !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

// hexByte decodes exactly two lowercase-or-uppercase hex digits.
func hexByte(s string, out *byte) bool {
	var b [1]byte
	if _, err := hex.Decode(b[:], []byte(s)); err != nil {
		return false
	}
	*out = b[0]
	return true
}

// TraceSpan is one timed child operation inside a request trace
// (limiter wait, store acquire, peer fetch, synth stream, ...). Times
// are offsets from the request's start so a trace is self-contained.
type TraceSpan struct {
	Name    string `json:"name"`
	StartNs int64  `json:"start_ns"`
	DurNs   int64  `json:"dur_ns"`
}

// RequestTrace is one completed request's immutable record: identity,
// HTTP outcome, and the timed child spans. It is what TraceRing stores
// and GET /debug/requests serves.
type RequestTrace struct {
	TraceID string      `json:"trace_id"`
	SpanID  string      `json:"span_id"`
	Parent  string      `json:"parent_span_id,omitempty"`
	Name    string      `json:"name"`
	Method  string      `json:"method,omitempty"`
	Route   string      `json:"route,omitempty"`
	Peer    bool        `json:"peer,omitempty"`
	Status  int         `json:"status,omitempty"`
	Bytes   int64       `json:"bytes,omitempty"`
	Start   time.Time   `json:"start"`
	DurNs   int64       `json:"dur_ns"`
	Spans   []TraceSpan `json:"spans,omitempty"`
}

// ReqTrace is one in-flight request's trace. It is carried through the
// request context (StartRequest / RequestFromContext); handlers attach
// timed child spans with StartSpan and the middleware seals it with
// Finish. All methods are safe on a nil *ReqTrace — code paths that
// also run without a request (the offline CLI) can instrument
// unconditionally — and safe for concurrent spans.
type ReqTrace struct {
	traceID TraceID
	spanID  SpanID
	parent  SpanID
	flags   byte
	name    string
	start   time.Time

	method string
	route  string
	peer   bool

	mu    sync.Mutex
	spans []TraceSpan
}

// reqKey carries the active request trace through a context.
type reqKey struct{}

// StartRequest opens a request trace named name as a child of parent:
// a valid parent trace ID is adopted (the request joins the caller's
// trace) and its span ID recorded as the parent span; a zero parent
// starts a fresh trace. The returned context carries the trace for
// RequestFromContext.
func StartRequest(ctx context.Context, name string, parent SpanContext) (context.Context, *ReqTrace) {
	if ctx == nil {
		ctx = context.Background()
	}
	t := &ReqTrace{
		traceID: parent.TraceID,
		spanID:  NewSpanID(),
		parent:  parent.SpanID,
		flags:   parent.Flags | FlagSampled,
		name:    name,
		start:   time.Now(),
	}
	if t.traceID.IsZero() {
		t.traceID = NewTraceID()
	}
	return context.WithValue(ctx, reqKey{}, t), t
}

// RequestFromContext returns the request trace carried by ctx, or nil.
func RequestFromContext(ctx context.Context) *ReqTrace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(reqKey{}).(*ReqTrace)
	return t
}

// TraceID returns the trace identifier (zero for a nil trace).
func (t *ReqTrace) TraceID() TraceID {
	if t == nil {
		return TraceID{}
	}
	return t.traceID
}

// Context returns the trace's own span context — what this request
// would report as itself.
func (t *ReqTrace) Context() SpanContext {
	if t == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: t.traceID, SpanID: t.spanID, Flags: t.flags}
}

// ChildContext mints a span context for one outbound call: same trace,
// fresh span ID. Its Traceparent() is what goes on the wire, so the
// remote hop records this request's trace ID and a parent span that is
// unique per outbound call.
func (t *ReqTrace) ChildContext() SpanContext {
	if t == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: t.traceID, SpanID: NewSpanID(), Flags: t.flags}
}

// SetHTTP attaches the request's HTTP identity: method, route (URL
// path), and whether the caller is a cluster peer.
func (t *ReqTrace) SetHTTP(method, route string, peer bool) {
	if t == nil {
		return
	}
	t.method, t.route, t.peer = method, route, peer
}

// noopEnd is the shared end function of spans on a nil trace.
var noopEnd = func() {}

// StartSpan begins a timed child span and returns its end function.
// The span is recorded when the end function runs; an end function
// that never runs records nothing.
func (t *ReqTrace) StartSpan(name string) func() {
	if t == nil {
		return noopEnd
	}
	start := time.Now()
	return func() {
		sp := TraceSpan{
			Name:    name,
			StartNs: start.Sub(t.start).Nanoseconds(),
			DurNs:   time.Since(start).Nanoseconds(),
		}
		t.mu.Lock()
		t.spans = append(t.spans, sp)
		t.mu.Unlock()
	}
}

// Finish seals the trace with the request's outcome and returns the
// immutable completed record. A nil trace returns nil.
func (t *ReqTrace) Finish(status int, bytes int64) *RequestTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := append([]TraceSpan(nil), t.spans...)
	t.mu.Unlock()
	rt := &RequestTrace{
		TraceID: t.traceID.String(),
		SpanID:  t.spanID.String(),
		Name:    t.name,
		Method:  t.method,
		Route:   t.route,
		Peer:    t.peer,
		Status:  status,
		Bytes:   bytes,
		Start:   t.start,
		DurNs:   time.Since(t.start).Nanoseconds(),
		Spans:   spans,
	}
	if !t.parent.IsZero() {
		rt.Parent = t.parent.String()
	}
	return rt
}

// TraceRing is a bounded lock-free ring buffer of completed request
// traces: Put is one atomic add plus one atomic pointer store, so the
// request path never contends on a lock, and the newest cap(ring)
// traces win. Readers get point-in-time snapshots.
type TraceRing struct {
	slots []atomic.Pointer[RequestTrace]
	next  atomic.Uint64
}

// DefaultTraceRingSize is the ring capacity when none is configured.
const DefaultTraceRingSize = 256

// NewTraceRing returns a ring keeping the most recent size traces
// (size <= 0 selects DefaultTraceRingSize).
func NewTraceRing(size int) *TraceRing {
	if size <= 0 {
		size = DefaultTraceRingSize
	}
	return &TraceRing{slots: make([]atomic.Pointer[RequestTrace], size)}
}

// Cap returns the ring's capacity.
func (r *TraceRing) Cap() int { return len(r.slots) }

// Put records one completed trace, overwriting the oldest slot once
// the ring is full. nil traces are ignored.
func (r *TraceRing) Put(t *RequestTrace) {
	if t == nil {
		return
	}
	i := r.next.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(t)
}

// Recent returns up to n completed traces, newest first. Concurrent
// writers may race individual slots; the result is always a consistent
// set of completed traces, just not necessarily a gap-free suffix.
func (r *TraceRing) Recent(n int) []*RequestTrace {
	total := r.next.Load()
	if n <= 0 || total == 0 {
		return nil
	}
	if uint64(n) > total {
		n = int(total)
	}
	if n > len(r.slots) {
		n = len(r.slots)
	}
	out := make([]*RequestTrace, 0, n)
	for k := 0; k < n; k++ {
		i := total - 1 - uint64(k)
		if t := r.slots[i%uint64(len(r.slots))].Load(); t != nil {
			out = append(out, t)
		}
	}
	return out
}
