package obs

import (
	"context"
	"flag"
	"fmt"
	"os"
)

// Flags is the shared observability flag set of the three binaries
// (mocktails, experiments, tracegen): verbosity, metrics dump,
// profiling outputs, and the optional pprof HTTP listener. Register it
// on a FlagSet with RegisterFlags, then bracket the run between Start
// and its returned stop function.
type Flags struct {
	// Verbose enables debug logging and, on stop, the span tree and
	// per-stage summary on stderr (-v).
	Verbose bool
	// Metrics is the path the metrics-registry JSON document is written
	// to on stop (-metrics).
	Metrics string
	// CPUProfile is the CPU profile output path (-pprof).
	CPUProfile string
	// MemProfile is the heap profile output path, written on stop
	// (-memprofile).
	MemProfile string
	// Trace is the runtime execution trace output path (-trace).
	Trace string
	// HTTP is the address of the optional net/http/pprof + expvar
	// listener (-pprof-http), e.g. "localhost:6060".
	HTTP string
	// LogFormat selects the slog handler: "text" (default) or "json"
	// (-log-format).
	LogFormat string
	// AccessLog gates per-request access-log lines in servers that
	// consult obs.AccessLogEnabled (-access-log, default true; the
	// lines are emitted at Info, so they stay invisible at the default
	// warn threshold either way).
	AccessLog bool
}

// RegisterFlags adds the shared observability flags to fs and returns
// the struct their values land in after fs.Parse.
func RegisterFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.BoolVar(&f.Verbose, "v", false, "verbose: debug logging plus a span tree and per-stage summary on exit")
	fs.StringVar(&f.Metrics, "metrics", "", "write the metrics registry as one JSON document to this file on exit")
	fs.StringVar(&f.CPUProfile, "pprof", "", "write a CPU profile to this file")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a heap profile to this file on exit")
	fs.StringVar(&f.Trace, "trace", "", "write a runtime execution trace to this file")
	fs.StringVar(&f.HTTP, "pprof-http", "", "serve net/http/pprof and expvar metrics on this address (e.g. localhost:6060)")
	fs.StringVar(&f.LogFormat, "log-format", "text", "log output format: text (logfmt) or json")
	fs.BoolVar(&f.AccessLog, "access-log", true, "emit one structured access-log line per HTTP request (servers only)")
	return f
}

// Start applies the parsed flags: it sets verbosity, starts the CPU
// profile, execution trace and pprof listener as requested, and opens
// the run's root span. The returned context carries the root span (pass
// it down so stage spans nest); the returned stop function ends the
// root span, prints the span tree and per-stage summary when verbose,
// and writes the heap-profile and metrics files. Call stop exactly once
// at the end of a successful run. Flag-driven setup failures are fatal:
// a requested-but-broken profile output should not be discovered after
// a long run.
func (f *Flags) Start(name string) (context.Context, func()) {
	if err := SetLogFormat(f.LogFormat); err != nil {
		Fatal(err)
	}
	SetAccessLog(f.AccessLog)
	SetVerbose(f.Verbose)
	var stops []func()
	if f.CPUProfile != "" {
		stop, err := StartCPUProfile(f.CPUProfile)
		if err != nil {
			Fatal(err)
		}
		stops = append(stops, stop)
	}
	if f.Trace != "" {
		stop, err := StartTrace(f.Trace)
		if err != nil {
			Fatal(err)
		}
		stops = append(stops, stop)
	}
	if f.HTTP != "" {
		// The listener lives exactly as long as the bracket: stop closes
		// it (and waits for its goroutine) instead of leaking it for the
		// remainder of the process.
		hctx, cancel := context.WithCancel(context.Background())
		if err := ServePprof(hctx, f.HTTP); err != nil {
			cancel()
			Fatal(err)
		}
		stops = append(stops, cancel)
	}
	ctx, root := Start(context.Background(), name)
	return ctx, func() {
		root.End()
		if f.Verbose {
			fmt.Fprintln(os.Stderr)
			root.WriteTree(os.Stderr)
			fmt.Fprintln(os.Stderr)
			root.WriteSummary(os.Stderr)
		}
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
		if f.MemProfile != "" {
			if err := WriteHeapProfile(f.MemProfile); err != nil {
				Logger().Error("heap profile", "err", err)
			}
		}
		if f.Metrics != "" {
			if err := WriteMetricsFile(f.Metrics); err != nil {
				Logger().Error("metrics dump", "err", err)
			}
		}
	}
}
