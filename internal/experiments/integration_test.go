package experiments

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/profile"
	"repro/internal/trace"
)

// TestOptionAEqualsOptionB checks Fig. 1's two use cases against each
// other: Option A (synthesise a trace file up front, then replay it)
// and Option B (couple the synthesizer to the simulator) must produce
// identical results when driven by the same profile and seed, as long as
// both experience the same backpressure policy.
func TestOptionAEqualsOptionB(t *testing.T) {
	e := NewEnv()
	tr := e.Trace("CPU-V")
	p, err := core.Build("CPU-V", tr, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Option A: generate the full trace, then replay.
	synTrace := core.SynthesizeTrace(p, 7)
	resA := dram.Run(trace.NewReplayer(synTrace), e.DRAMCfg, e.XbarLat)
	// Option B: drive the simulator from the live synthesizer.
	resB := dram.Run(core.Synthesize(p, 7), e.DRAMCfg, e.XbarLat)

	if resA.ReadBursts() != resB.ReadBursts() || resA.WriteBursts() != resB.WriteBursts() {
		t.Errorf("burst counts differ: A %d/%d B %d/%d",
			resA.ReadBursts(), resA.WriteBursts(), resB.ReadBursts(), resB.WriteBursts())
	}
	if resA.ReadRowHits() != resB.ReadRowHits() || resA.WriteRowHits() != resB.WriteRowHits() {
		t.Errorf("row hits differ: A %d/%d B %d/%d",
			resA.ReadRowHits(), resA.WriteRowHits(), resB.ReadRowHits(), resB.WriteRowHits())
	}
	if resA.AvgLatency != resB.AvgLatency {
		t.Errorf("latency differs: A %.2f B %.2f", resA.AvgLatency, resB.AvgLatency)
	}
}

// TestProfileSurvivesSerialisation checks the full industry→academia
// hand-off: a profile serialised to bytes and read back yields the
// byte-identical synthetic stream.
func TestProfileSurvivesSerialisation(t *testing.T) {
	e := NewEnv()
	p, err := core.Build("T-Rex1", e.Trace("T-Rex1"), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := profile.WriteGzip(&buf, p); err != nil {
		t.Fatal(err)
	}
	p2, err := profile.ReadGzip(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a := core.SynthesizeTrace(p, 3)
	b := core.SynthesizeTrace(p2, 3)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs after serialisation: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestEndToEndEveryDevice is the broad safety net: for every Table II
// proxy, the full pipeline (fit → synthesize → simulate) holds the core
// §IV invariants.
func TestEndToEndEveryDevice(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	e := NewEnv()
	for _, name := range []string{"Crypto1", "CPU-D", "FBC-Linear1", "FBC-Tiled1",
		"Multi-layer", "T-Rex1", "OpenCL1", "HEVC1"} {
		base := e.Baseline(name)
		mcc := e.McC(name)
		if mcc.Requests != base.Requests {
			t.Errorf("%s: request count %d vs %d", name, mcc.Requests, base.Requests)
		}
		if mcc.ReadBursts()+mcc.WriteBursts() == 0 {
			t.Errorf("%s: clone produced no bursts", name)
		}
		if err := e.rowHitError(name, mcc); err > 25 {
			t.Errorf("%s: row-hit error %.1f%% beyond sanity bound", name, err)
		}
	}
}
