package experiments

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/cache"
)

func TestRunCacheBasics(t *testing.T) {
	e := NewEnv()
	tr := e.SpecTrace("hmmer")[:20000]
	r := RunCache(tr, cache.Default64(16<<10, 2))
	if r.L1.Accesses == 0 || r.Footprint == 0 {
		t.Fatalf("empty cache run: %+v", r)
	}
	if r.L1.Misses == 0 {
		t.Error("no L1 misses at all")
	}
	if r.L2.Accesses == 0 {
		t.Error("L2 never accessed")
	}
}

// TestPaperClaimsSection5 checks the §V headline: Mocktails (Dynamic)
// tracks baseline cache metrics more closely than Mocktails (4KB) and
// HRD, and the three Fig. 15 associativity trends survive cloning.
func TestPaperClaimsSection5(t *testing.T) {
	if testing.Short() {
		t.Skip("section V battery is slow")
	}
	e := NewEnv()
	get := func(tab *Table, bench string, assoc string, col int) float64 {
		t.Helper()
		for _, row := range tab.Rows {
			if row[0] == bench && row[1] == assoc {
				v, err := strconv.ParseFloat(row[col], 64)
				if err != nil {
					t.Fatalf("parse %q: %v", row[col], err)
				}
				return v
			}
		}
		t.Fatalf("row %s/%s not found", bench, assoc)
		return 0
	}
	fig15 := e.RunFig15()

	// Trend checks on the baseline.
	if !(get(fig15, "gobmk", "2", 2) > get(fig15, "gobmk", "16", 2)) {
		t.Error("baseline gobmk miss rate does not fall with associativity")
	}
	lqLo, lqHi := get(fig15, "libquantum", "2", 2), get(fig15, "libquantum", "16", 2)
	if lqLo != lqHi {
		t.Errorf("baseline libquantum not flat: %.2f vs %.2f", lqLo, lqHi)
	}
	if !(get(fig15, "zeusmp", "2", 2) < get(fig15, "zeusmp", "16", 2)) {
		t.Error("baseline zeusmp miss rate does not rise with associativity")
	}

	// Mocktails (Dynamic) preserves all three trends.
	if !(get(fig15, "gobmk", "2", 3) > get(fig15, "gobmk", "16", 3)) {
		t.Error("Mocktails gobmk trend lost")
	}
	if d := get(fig15, "libquantum", "2", 3) - get(fig15, "libquantum", "16", 3); d < -0.5 || d > 0.5 {
		t.Errorf("Mocktails libquantum not flat: delta %.2f", d)
	}
	if !(get(fig15, "zeusmp", "2", 3) < get(fig15, "zeusmp", "16", 3)) {
		t.Error("Mocktails zeusmp trend lost")
	}

	// Per-point accuracy: Mocktails stays within 3 points of baseline.
	for _, row := range fig15.Rows {
		base, _ := strconv.ParseFloat(row[2], 64)
		mock, _ := strconv.ParseFloat(row[3], 64)
		if diff := mock - base; diff > 3 || diff < -3 {
			t.Errorf("fig15 %s assoc %s: Mocktails %.2f vs baseline %.2f", row[0], row[1], mock, base)
		}
	}
}

func TestFig14DynamicBeatsAlternatives(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	e := NewEnv()
	tab := e.RunFig14()
	if len(tab.Rows) != 4 {
		t.Fatalf("fig14 rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		base, _ := strconv.ParseFloat(row[2], 64)
		dyn, _ := strconv.ParseFloat(row[3], 64)
		fix, _ := strconv.ParseFloat(row[4], 64)
		hrd, _ := strconv.ParseFloat(row[5], 64)
		errDyn := abs(dyn - base)
		errFix := abs(fix - base)
		errHRD := abs(hrd - base)
		if errDyn > errFix+0.25 {
			t.Errorf("%s %s: Dynamic error %.2f worse than 4KB %.2f", row[0], row[1], errDyn, errFix)
		}
		if errDyn > errHRD+0.25 {
			t.Errorf("%s %s: Dynamic error %.2f worse than HRD %.2f", row[0], row[1], errDyn, errHRD)
		}
	}
}

func TestFig17ProfilesSmallerThanTraces(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tab := NewEnv().RunFig17()
	if len(tab.Rows) != 23 {
		t.Fatalf("fig17 rows = %d", len(tab.Rows))
	}
	smaller := 0
	for _, row := range tab.Rows {
		traceKB, _ := strconv.Atoi(row[1])
		dynKB, _ := strconv.Atoi(row[2])
		if dynKB < traceKB {
			smaller++
		}
	}
	if smaller < 18 {
		t.Errorf("only %d/23 profiles smaller than their traces", smaller)
	}
	if len(tab.Notes) == 0 || !strings.Contains(tab.Notes[0], "smaller") {
		t.Error("missing overall reduction note")
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
