package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestTableFprint(t *testing.T) {
	tab := &Table{
		ID:     "t",
		Title:  "title",
		Header: []string{"a", "bbbb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"a note"},
	}
	var sb strings.Builder
	tab.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"== t: title ==", "a", "bbbb", "333", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestIDsAndRunAgree(t *testing.T) {
	e := NewEnv()
	if e.Run("nonsense") != nil {
		t.Error("unknown id returned a table")
	}
	if len(IDs()) != 26 {
		t.Errorf("IDs() has %d entries, want 26", len(IDs()))
	}
}

func TestEnvCaching(t *testing.T) {
	e := NewEnv()
	a := e.Trace("Crypto1")
	b := e.Trace("Crypto1")
	if &a[0] != &b[0] {
		t.Error("trace not cached")
	}
	r1 := e.Baseline("Crypto1")
	r2 := e.Baseline("Crypto1")
	if r1.Requests != r2.Requests {
		t.Error("baseline result changed between calls")
	}
}

func TestFig2Structure(t *testing.T) {
	tab := NewEnv().RunFig2()
	if tab.ID != "fig2" || len(tab.Rows) == 0 {
		t.Fatalf("fig2 = %+v", tab)
	}
	// Offsets must lie within the 4KB region.
	for _, row := range tab.Rows {
		off, err := strconv.Atoi(row[1])
		if err != nil || off < 0 || off >= 4096 {
			t.Errorf("bad byte offset %q", row[1])
		}
	}
}

func TestFig3ShowsIdleBins(t *testing.T) {
	tab := NewEnv().RunFig3()
	if len(tab.Rows) < 5 {
		t.Fatalf("fig3 has %d bins", len(tab.Rows))
	}
	empty := 0
	for _, row := range tab.Rows {
		if row[1] == "0" {
			empty++
		}
	}
	if empty == 0 {
		t.Error("no idle bins: HEVC should have long gaps (Fig. 3)")
	}
}

func TestTable1ShowsDeterminismGain(t *testing.T) {
	tab := NewEnv().RunTable1()
	if len(tab.Rows) == 0 || len(tab.Notes) == 0 {
		t.Fatalf("table1 = %+v", tab)
	}
}

func TestTable2ListsAllTraces(t *testing.T) {
	tab := NewEnv().RunTable2()
	if len(tab.Rows) != 18 {
		t.Errorf("table2 has %d rows", len(tab.Rows))
	}
}

func TestTable3MatchesConfig(t *testing.T) {
	tab := NewEnv().RunTable3()
	var sb strings.Builder
	tab.Fprint(&sb)
	for _, want := range []string{"4", "1 & 8", "32 bytes", "32 & 64 bursts", "85% & 50%"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("table3 missing %q", want)
		}
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

// TestPaperClaimsSection4 checks the paper's headline quantitative claims
// on the §IV experiments: McC burst errors are low, McC row-hit errors
// beat the paper's bounds in geometric mean, and McC beats STM on row
// hits.
func TestPaperClaimsSection4(t *testing.T) {
	if testing.Short() {
		t.Skip("section IV battery is slow")
	}
	e := NewEnv()

	fig6 := e.RunFig6()
	for _, row := range fig6.Rows {
		dev := row[0]
		if rb := parseF(t, row[1]); rb > 8 {
			t.Errorf("fig6 %s: McC read-burst error %.2f%% > 8%%", dev, rb)
		}
		if wb := parseF(t, row[3]); wb > 8 {
			t.Errorf("fig6 %s: McC write-burst error %.2f%% > 8%%", dev, wb)
		}
	}

	fig9 := e.RunFig9()
	for _, row := range fig9.Rows {
		dev := row[0]
		rhM, rhS := parseF(t, row[1]), parseF(t, row[2])
		whM := parseF(t, row[3])
		if rhM > 7.5 {
			t.Errorf("fig9 %s: McC read-row-hit error %.2f%% exceeds the paper's 7.3%% bound", dev, rhM)
		}
		if whM > 7.5 {
			t.Errorf("fig9 %s: McC write-row-hit error %.2f%%", dev, whM)
		}
		_ = rhS
	}

	// Aggregate McC-vs-STM comparison: McC should win on row hits
	// overall (the paper's Fig. 9 conclusion).
	var mccSum, stmSum float64
	for _, row := range fig9.Rows {
		mccSum += parseF(t, row[1]) + parseF(t, row[3])
		stmSum += parseF(t, row[2]) + parseF(t, row[4])
	}
	if mccSum >= stmSum {
		t.Errorf("McC row-hit error total %.2f not better than STM %.2f", mccSum, stmSum)
	}
}

func TestFig7QueueLengthsPlausible(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	e := NewEnv()
	tab := e.RunFig7()
	if len(tab.Rows) != 4 {
		t.Fatalf("fig7 rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		base := parseF(t, row[4])
		mcc := parseF(t, row[5])
		if base < 0 || mcc < 0 {
			t.Errorf("negative queue length in %v", row)
		}
	}
	// GPUs have the longest write queues of all devices (paper: "GPU
	// workloads have longer average queue lengths").
	var gpuW, cpuW float64
	for _, row := range tab.Rows {
		if row[0] == "GPU" {
			gpuW = parseF(t, row[4])
		}
		if row[0] == "CPU" {
			cpuW = parseF(t, row[4])
		}
	}
	if gpuW <= cpuW {
		t.Errorf("GPU write queue (%.1f) not longer than CPU (%.1f)", gpuW, cpuW)
	}
}

func TestFig8DistributionsClose(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tab := NewEnv().RunFig8()
	if len(tab.Rows) != 4 {
		t.Fatalf("fig8 rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if d := parseF(t, row[4]); d > 1.0 {
			t.Errorf("channel %s: McC write-queue distribution L1 distance %.3f > 1.0", row[0], d)
		}
	}
}

func TestFig10LinearBeatsTiled(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tab := NewEnv().RunFig10()
	// Row hit counts: linear read hits > tiled read hits in baseline,
	// and McC preserves the ordering.
	var linBase, tilBase, linMcC, tilMcC float64
	for _, row := range tab.Rows {
		if row[1] != "read row hits" {
			continue
		}
		switch row[0] {
		case "FBC-Linear1":
			linBase, linMcC = parseF(t, row[2]), parseF(t, row[3])
		case "FBC-Tiled1":
			tilBase, tilMcC = parseF(t, row[2]), parseF(t, row[3])
		}
	}
	if linBase <= tilBase {
		t.Errorf("baseline: linear (%v) not more row hits than tiled (%v)", linBase, tilBase)
	}
	if linMcC <= tilMcC {
		t.Errorf("McC: linear (%v) not more row hits than tiled (%v)", linMcC, tilMcC)
	}
}

func TestFig12WriteFreeBanksPreserved(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tab := NewEnv().RunFig12()
	if len(tab.Rows) != 32 {
		t.Fatalf("fig12 rows = %d, want 32 (4ch x 8banks)", len(tab.Rows))
	}
	baseQuiet, mccQuiet := 0, 0
	for _, row := range tab.Rows {
		if row[5] == "0" {
			baseQuiet++
		}
		if row[6] == "0" {
			mccQuiet++
		}
	}
	if baseQuiet == 0 {
		t.Error("baseline writes reach every bank; Fig. 12b expects write-free banks")
	}
	if mccQuiet == 0 {
		t.Error("McC clone writes reach every bank")
	}
}
