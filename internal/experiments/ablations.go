package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/partition"
	"repro/internal/privacy"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// This file contains experiments beyond the paper's exhibits: ablations
// of the design choices DESIGN.md calls out (dynamic spatial
// partitioning, temporal-first ordering), the §VI privacy extension, and
// the §VI ChargeCache case study.

// runConfig builds a profile with the given hierarchy and simulates it.
func (e *Env) runConfig(name string, cfg partition.Config) dram.Result {
	p, err := core.Build(name, e.Trace(name), cfg)
	if err != nil {
		panic(err)
	}
	return dram.Run(core.Synthesize(p, e.Seed, e.synthOpts()...), e.DRAMCfg, e.XbarLat)
}

// rowHitError returns the combined read+write row-hit percent error of a
// result against the named trace's baseline.
func (e *Env) rowHitError(name string, r dram.Result) float64 {
	base := e.Baseline(name)
	return (stats.PercentError(float64(r.ReadRowHits()), float64(base.ReadRowHits())) +
		stats.PercentError(float64(r.WriteRowHits()), float64(base.WriteRowHits()))) / 2
}

// RunAblationSpatial compares the spatial partitioning schemes: the
// paper's dynamic scheme, fixed 4-KB blocks, and no spatial layer at all
// (one leaf per temporal interval), reporting geometric-mean row-hit
// error per device class.
func (e *Env) RunAblationSpatial() *Table {
	configs := []struct {
		label string
		cfg   partition.Config
	}{
		{"dynamic", partition.TwoLevelTS(e.IntervalCycles)},
		{"fixed-4KB", partition.Config{Layers: []partition.Layer{
			{Kind: partition.TemporalCycleCount, Param: e.IntervalCycles},
			{Kind: partition.SpatialFixed, Param: 4096},
		}}},
		{"none", partition.Config{Layers: []partition.Layer{
			{Kind: partition.TemporalCycleCount, Param: e.IntervalCycles},
		}}},
	}
	tab := &Table{
		ID:     "ablation-spatial",
		Title:  "Row-hit error (%) by spatial partitioning scheme (geo. mean per device)",
		Header: []string{"device", "dynamic", "fixed-4KB", "no spatial layer"},
	}
	for _, dev := range workloads.Devices() {
		row := []string{dev}
		for _, c := range configs {
			var errs []float64
			for _, s := range workloads.ByDevice()[dev] {
				errs = append(errs, e.rowHitError(s.Name, e.runConfig(s.Name, c.cfg)))
			}
			row = append(row, f(stats.GeoMean(errs), 2))
		}
		tab.Rows = append(tab.Rows, row)
	}
	tab.Notes = append(tab.Notes, "ablates the paper's novel dynamic scheme (§III-A) against HALO-style fixed blocks and no spatial partitioning")
	return tab
}

// RunAblationOrder compares hierarchy orderings: temporal-first (the
// paper's recommendation, §III-D) against spatial-first.
func (e *Env) RunAblationOrder() *Table {
	temporalFirst := partition.TwoLevelTS(e.IntervalCycles)
	spatialFirst := partition.Config{Layers: []partition.Layer{
		{Kind: partition.SpatialDynamic},
		{Kind: partition.TemporalCycleCount, Param: e.IntervalCycles},
	}}
	tab := &Table{
		ID:     "ablation-order",
		Title:  "Row-hit error (%) by hierarchy ordering (geo. mean per device)",
		Header: []string{"device", "temporal-first (2L-TS)", "spatial-first"},
	}
	for _, dev := range workloads.Devices() {
		var tf, sf []float64
		for _, s := range workloads.ByDevice()[dev] {
			tf = append(tf, e.rowHitError(s.Name, e.runConfig(s.Name, temporalFirst)))
			sf = append(sf, e.rowHitError(s.Name, e.runConfig(s.Name, spatialFirst)))
		}
		tab.Rows = append(tab.Rows, []string{dev, f(stats.GeoMean(tf), 2), f(stats.GeoMean(sf), 2)})
	}
	tab.Notes = append(tab.Notes, "the paper recommends partitioning temporally before spatially (§III-D)")
	return tab
}

// RunAblationPrivacy sweeps the §VI privacy extension: Laplace noise of
// decreasing epsilon is added to one profile per device class, and the
// row-hit and latency errors of the noised profiles are reported.
func (e *Env) RunAblationPrivacy() *Table {
	epsilons := []float64{0, 2, 0.5, 0.1, 0.02} // 0 = no noise
	names := []string{"Crypto1", "FBC-Linear1", "T-Rex1", "HEVC1"}
	tab := &Table{
		ID:     "ablation-privacy",
		Title:  "Fidelity vs privacy budget (row-hit error % / latency error %)",
		Header: []string{"trace", "no-noise", "eps=2", "eps=0.5", "eps=0.1", "eps=0.02"},
	}
	for _, name := range names {
		base := e.Baseline(name)
		p, err := core.Build(name, e.Trace(name), partition.TwoLevelTS(e.IntervalCycles))
		if err != nil {
			panic(err)
		}
		row := []string{name}
		for _, eps := range epsilons {
			prof := p
			if eps > 0 {
				prof = privacy.Noise(p, eps, e.Seed)
			}
			r := dram.Run(core.Synthesize(prof, e.Seed, e.synthOpts()...), e.DRAMCfg, e.XbarLat)
			rowErr := e.rowHitError(name, r)
			latErr := stats.PercentError(r.AvgLatency, base.AvgLatency)
			row = append(row, fmt.Sprintf("%.1f/%.1f", rowErr, latErr))
		}
		tab.Rows = append(tab.Rows, row)
	}
	tab.Notes = append(tab.Notes, "implements the differential-privacy obfuscation sketched in §VI; smaller epsilon = stronger privacy")
	return tab
}

// RunChargeCache reproduces the §VI case study: evaluating the
// ChargeCache memory-controller optimisation (Hassan et al., HPCA 2016)
// on heterogeneous devices using Mocktails clones in place of the
// proprietary traces, and checking that the clone predicts the same
// speedup as the real trace.
func (e *Env) RunChargeCache() *Table {
	ccCfg := e.DRAMCfg.WithChargeCache(128)
	tab := &Table{
		ID:    "chargecache",
		Title: "ChargeCache latency improvement (%): real trace vs Mocktails clone",
		Header: []string{"device", "trace",
			"real improv", "clone improv", "cc hit-rate real", "cc hit-rate clone"},
	}
	improv := func(base, opt dram.Result) float64 {
		if base.AvgLatency == 0 {
			return 0
		}
		return (base.AvgLatency - opt.AvgLatency) / base.AvgLatency * 100
	}
	hitRate := func(r dram.Result) float64 {
		var s dram.ChargeCacheStats
		for i := range r.Channels {
			s.Hits += r.Channels[i].ChargeCache.Hits
			s.Lookups += r.Channels[i].ChargeCache.Lookups
		}
		return s.HitRate()
	}
	for _, dev := range workloads.Devices() {
		specs := workloads.ByDevice()[dev]
		s := specs[0] // one representative trace per device
		tr := e.Trace(s.Name)
		p, err := core.Build(s.Name, tr, partition.TwoLevelTS(e.IntervalCycles))
		if err != nil {
			panic(err)
		}
		realBase := e.Baseline(s.Name)
		realOpt := dram.Run(trace.NewReplayer(tr), ccCfg, e.XbarLat)
		cloneBase := dram.Run(core.Synthesize(p, e.Seed, e.synthOpts()...), e.DRAMCfg, e.XbarLat)
		cloneOpt := dram.Run(core.Synthesize(p, e.Seed, e.synthOpts()...), ccCfg, e.XbarLat)
		tab.Rows = append(tab.Rows, []string{dev, s.Name,
			f(improv(realBase, realOpt), 2), f(improv(cloneBase, cloneOpt), 2),
			f(hitRate(realOpt), 1), f(hitRate(cloneOpt), 1)})
	}
	tab.Notes = append(tab.Notes, "the §VI use case: an optimisation studied per device class without proprietary traces")
	return tab
}
