package experiments

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/partition"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// fig2Region returns the requests of the paper's Fig. 2 view: the 4-KB
// region with the most read requests among the first 100,000 requests of
// HEVC1 (the reference-frame regions the paper plots are read regions;
// the output write buffer would otherwise dominate).
func (e *Env) fig2Region() (trace.Trace, uint64) {
	t := e.Trace("HEVC1")
	if len(t) > 100000 {
		t = t[:100000]
	}
	counts := make(map[uint64]int)
	for _, r := range t {
		if r.Op == trace.Read {
			counts[r.Addr/4096]++
		}
	}
	var block uint64
	best := -1
	for b, n := range counts {
		if n > best || (n == best && b < block) {
			block, best = b, n
		}
	}
	var in trace.Trace
	for _, r := range t {
		if r.Addr/4096 == block {
			in = append(in, r)
		}
	}
	return in, block
}

// RunFig2 reproduces Fig. 2: the requests falling in one 4-KB region of
// the HEVC1 trace, listed in the order they are sent, with their byte
// offset and size, plus the dynamic spatial partition each request lands
// in.
func (e *Env) RunFig2() *Table {
	in, block := e.fig2Region()
	parts := partition.ByDynamic(in)
	partOf := func(addr uint64) string {
		for i, p := range parts {
			if addr >= p.Lo && addr < p.Hi {
				return string(rune('A' + i%26))
			}
		}
		return "?"
	}
	tab := &Table{
		ID:     "fig2",
		Title:  fmt.Sprintf("Requests from 4KB region 0x%x of HEVC1 (%d requests)", block*4096, len(in)),
		Header: []string{"order", "byte-offset", "size", "op", "dyn-partition"},
	}
	limit := len(in)
	if limit > 40 {
		limit = 40
	}
	for i := 0; i < limit; i++ {
		r := in[i]
		tab.Rows = append(tab.Rows, []string{
			u(uint64(i)), u(r.Addr - block*4096), u(uint64(r.Size)), r.Op.String(), partOf(r.Addr),
		})
	}
	tab.Notes = append(tab.Notes,
		fmt.Sprintf("dynamic spatial partitioning found %d partitions in this region", len(parts)))
	return tab
}

// RunFig3 reproduces Fig. 3: the timing of the Fig. 2 region's requests,
// binned at 50M cycles — clusters of requests separated in time by
// hundreds of millions of cycles (the frames that reuse the region).
func (e *Env) RunFig3() *Table {
	in, block := e.fig2Region()
	times := make([]uint64, len(in))
	for i, r := range in {
		times[i] = r.Time
	}
	const bin = 50_000_000
	bins := stats.TimeBins(times, bin)
	tab := &Table{
		ID:     "fig3",
		Title:  fmt.Sprintf("Requests to 4KB region 0x%x of HEVC1 per 50M-cycle bin", block*4096),
		Header: []string{"bin-start(Mcycles)", "requests"},
	}
	for i, n := range bins {
		tab.Rows = append(tab.Rows, []string{u(uint64(i) * 50), u(n)})
	}
	return tab
}

// RunTable1 reproduces Table I: the strides and sizes of one recurring
// dynamic partition of the Fig. 2 region, modelled with one versus two
// temporal partitions, showing that the finer hierarchy becomes exactly
// Markov-predictable.
func (e *Env) RunTable1() *Table {
	in, _ := e.fig2Region()
	parts := partition.ByDynamic(in)
	// Pick the partition with the most requests (the "F"-like one).
	sort.SliceStable(parts, func(i, j int) bool { return len(parts[i].Reqs) > len(parts[j].Reqs) })
	p := parts[0]
	tab := &Table{
		ID:     "table1",
		Title:  "Requests of the busiest dynamic partition: strides/sizes under 1 vs 2 temporal partitions",
		Header: []string{"addr", "stride", "size", "temporal-half"},
	}
	half := (len(p.Reqs) + 1) / 2
	for i, r := range p.Reqs {
		stride := "N/A"
		if i > 0 {
			stride = fmt.Sprintf("%d", int64(r.Addr)-int64(p.Reqs[i-1].Addr))
		}
		hn := "1st"
		if i >= half {
			hn = "2nd"
			if i == half {
				stride = "N/A" // the second temporal partition restarts
			}
		}
		tab.Rows = append(tab.Rows, []string{fmt.Sprintf("%X", r.Addr), stride, u(uint64(r.Size)), hn})
		if i >= 23 {
			break
		}
	}
	det1 := markovDeterminism(p.Reqs)
	detA := markovDeterminism(p.Reqs[:half])
	detB := markovDeterminism(p.Reqs[half:])
	tab.Notes = append(tab.Notes,
		fmt.Sprintf("stride-Markov determinism: 1 temporal partition %.0f%%, 2 temporal partitions %.0f%% / %.0f%%",
			det1*100, detA*100, detB*100))
	return tab
}

// markovDeterminism returns the fraction of stride-Markov rows with a
// single successor (1.0 = the chain reproduces the sequence perfectly).
func markovDeterminism(reqs trace.Trace) float64 {
	if len(reqs) < 3 {
		return 1
	}
	next := make(map[int64]map[int64]struct{})
	var prev int64
	for i := 1; i < len(reqs); i++ {
		s := int64(reqs[i].Addr) - int64(reqs[i-1].Addr)
		if i > 1 {
			row := next[prev]
			if row == nil {
				row = make(map[int64]struct{})
				next[prev] = row
			}
			row[s] = struct{}{}
		}
		prev = s
	}
	if len(next) == 0 {
		return 1
	}
	det := 0
	for _, row := range next {
		if len(row) == 1 {
			det++
		}
	}
	return float64(det) / float64(len(next))
}

// RunTable2 reproduces Table II: the catalogue of (proxy) traces.
func (e *Env) RunTable2() *Table {
	tab := &Table{
		ID:     "table2",
		Title:  "Proxy traces standing in for the paper's proprietary traces",
		Header: []string{"name", "device", "requests", "description"},
	}
	for _, s := range workloads.Catalog() {
		tab.Rows = append(tab.Rows, []string{s.Name, s.Device, u(uint64(len(e.Trace(s.Name)))), s.Desc})
	}
	return tab
}

// RunTable3 reports the memory configuration in use (Table III).
func (e *Env) RunTable3() *Table {
	c := e.DRAMCfg
	tab := &Table{
		ID:     "table3",
		Title:  "Memory configuration",
		Header: []string{"parameter", "value"},
	}
	tab.Rows = [][]string{
		{"Number of Channels", u(uint64(c.Channels))},
		{"Ranks per Channel & Banks per Rank", fmt.Sprintf("%d & %d", c.RanksPerChannel, c.BanksPerRank)},
		{"Burst Size", fmt.Sprintf("%d bytes", c.BurstBytes)},
		{"Read & Write Queue Size", fmt.Sprintf("%d & %d bursts", c.ReadQueueDepth, c.WriteQueueDepth)},
		{"High & Low Write Threshold", fmt.Sprintf("%.0f%% & %.0f%%", c.WriteHighRatio*100, c.WriteLowRatio*100)},
		{"Row Buffer", fmt.Sprintf("%d bytes", c.RowBufferBytes)},
	}
	return tab
}

// deviceErrors computes the geometric-mean percent error per device class
// for a metric extracted from the simulation results.
func (e *Env) deviceErrors(metric func(dram.Result) float64, model func(*Env, string) dram.Result) map[string]float64 {
	out := make(map[string]float64)
	for dev, specs := range workloads.ByDevice() {
		var errs []float64
		for _, s := range specs {
			ref := metric(e.Baseline(s.Name))
			got := metric(model(e, s.Name))
			errs = append(errs, stats.PercentError(got, ref))
		}
		out[dev] = stats.GeoMean(errs)
	}
	return out
}

// RunFig6 reproduces Fig. 6: the geometric-mean percent error in the
// number of DRAM read and write bursts per device, for 2L-TS (McC) and
// 2L-TS (STM).
func (e *Env) RunFig6() *Table {
	rbM := e.deviceErrors(func(r dram.Result) float64 { return float64(r.ReadBursts()) }, (*Env).McC)
	rbS := e.deviceErrors(func(r dram.Result) float64 { return float64(r.ReadBursts()) }, (*Env).STM)
	wbM := e.deviceErrors(func(r dram.Result) float64 { return float64(r.WriteBursts()) }, (*Env).McC)
	wbS := e.deviceErrors(func(r dram.Result) float64 { return float64(r.WriteBursts()) }, (*Env).STM)
	tab := &Table{
		ID:     "fig6",
		Title:  "Average error (%) per device for the number of DRAM bursts",
		Header: []string{"device", "read-bursts McC", "read-bursts STM", "write-bursts McC", "write-bursts STM"},
	}
	for _, dev := range workloads.Devices() {
		tab.Rows = append(tab.Rows, []string{dev, f(rbM[dev], 2), f(rbS[dev], 2), f(wbM[dev], 2), f(wbS[dev], 2)})
	}
	return tab
}

// RunFig7 reproduces Fig. 7: the average read and write queue lengths per
// device for the baseline and both models.
func (e *Env) RunFig7() *Table {
	tab := &Table{
		ID:    "fig7",
		Title: "Average read and write queue length per device",
		Header: []string{"device",
			"readQ base", "readQ McC", "readQ STM",
			"writeQ base", "writeQ McC", "writeQ STM"},
	}
	for _, dev := range workloads.Devices() {
		var rb, rm, rs, wb, wm, ws []float64
		for _, s := range workloads.ByDevice()[dev] {
			base, mcc, st := e.Baseline(s.Name), e.McC(s.Name), e.STM(s.Name)
			rb = append(rb, base.AvgReadQueueLen())
			rm = append(rm, mcc.AvgReadQueueLen())
			rs = append(rs, st.AvgReadQueueLen())
			wb = append(wb, base.AvgWriteQueueLen())
			wm = append(wm, mcc.AvgWriteQueueLen())
			ws = append(ws, st.AvgWriteQueueLen())
		}
		tab.Rows = append(tab.Rows, []string{dev,
			f(stats.Mean(rb), 2), f(stats.Mean(rm), 2), f(stats.Mean(rs), 2),
			f(stats.Mean(wb), 2), f(stats.Mean(wm), 2), f(stats.Mean(ws), 2)})
	}
	return tab
}

// RunFig8 reproduces Fig. 8: the per-channel distribution of write-queue
// lengths observed by arriving requests for the T-Rex1 GPU workload. The
// table reports each channel's distribution mean and the L1 distance of
// each model's distribution from the baseline's (0 = identical, 2 =
// disjoint).
func (e *Env) RunFig8() *Table {
	base, mcc, st := e.Baseline("T-Rex1"), e.McC("T-Rex1"), e.STM("T-Rex1")
	tab := &Table{
		ID:    "fig8",
		Title: "T-Rex1 per-channel write-queue-length distributions seen by arriving requests",
		Header: []string{"channel", "mean base", "mean McC", "mean STM",
			"L1dist McC", "L1dist STM"},
	}
	for ch := 0; ch < len(base.Channels); ch++ {
		hb := base.Channels[ch].WriteQLenSeen
		hm := mcc.Channels[ch].WriteQLenSeen
		hs := st.Channels[ch].WriteQLenSeen
		tab.Rows = append(tab.Rows, []string{
			u(uint64(ch)), f(hb.Mean(), 2), f(hm.Mean(), 2), f(hs.Mean(), 2),
			f(hb.Distance(hm), 3), f(hb.Distance(hs), 3)})
	}
	return tab
}

// RunFig9 reproduces Fig. 9: the geometric-mean percent error in read and
// write row hits per device.
func (e *Env) RunFig9() *Table {
	rhM := e.deviceErrors(func(r dram.Result) float64 { return float64(r.ReadRowHits()) }, (*Env).McC)
	rhS := e.deviceErrors(func(r dram.Result) float64 { return float64(r.ReadRowHits()) }, (*Env).STM)
	whM := e.deviceErrors(func(r dram.Result) float64 { return float64(r.WriteRowHits()) }, (*Env).McC)
	whS := e.deviceErrors(func(r dram.Result) float64 { return float64(r.WriteRowHits()) }, (*Env).STM)
	tab := &Table{
		ID:     "fig9",
		Title:  "Average error (%) for read and write row hits per device",
		Header: []string{"device", "read-hits McC", "read-hits STM", "write-hits McC", "write-hits STM"},
	}
	for _, dev := range workloads.Devices() {
		tab.Rows = append(tab.Rows, []string{dev, f(rhM[dev], 2), f(rhS[dev], 2), f(whM[dev], 2), f(whS[dev], 2)})
	}
	return tab
}

// RunFig10 reproduces Fig. 10: total read and write row hits for the
// linear versus tiled frame-buffer-compression DPU workloads.
func (e *Env) RunFig10() *Table {
	tab := &Table{
		ID:     "fig10",
		Title:  "Row hits when decompressing frame buffers on the DPU",
		Header: []string{"trace", "metric", "baseline", "McC", "STM"},
	}
	for _, name := range []string{"FBC-Linear1", "FBC-Tiled1"} {
		base, mcc, st := e.Baseline(name), e.McC(name), e.STM(name)
		tab.Rows = append(tab.Rows,
			[]string{name, "read row hits", u(base.ReadRowHits()), u(mcc.ReadRowHits()), u(st.ReadRowHits())},
			[]string{name, "write row hits", u(base.WriteRowHits()), u(mcc.WriteRowHits()), u(st.WriteRowHits())})
	}
	return tab
}

// RunFig11 reproduces Fig. 11: the average number of reads sent to DRAM
// before switching to writes, per memory channel, for the DPU workloads.
func (e *Env) RunFig11() *Table {
	tab := &Table{
		ID:     "fig11",
		Title:  "Average reads per read-to-write turnaround per channel",
		Header: []string{"trace", "channel", "baseline", "McC", "STM"},
	}
	for _, name := range []string{"FBC-Linear1", "FBC-Tiled1"} {
		base, mcc, st := e.Baseline(name), e.McC(name), e.STM(name)
		for ch := 0; ch < len(base.Channels); ch++ {
			tab.Rows = append(tab.Rows, []string{name, u(uint64(ch)),
				f(base.AvgReadsPerTurnaround(ch), 2),
				f(mcc.AvgReadsPerTurnaround(ch), 2),
				f(st.AvgReadsPerTurnaround(ch), 2)})
		}
	}
	return tab
}

// RunFig12 reproduces Fig. 12: per-bank read and write burst counts for
// the FBC-Linear1 DPU workload across every channel.
func (e *Env) RunFig12() *Table {
	base, mcc, st := e.Baseline("FBC-Linear1"), e.McC("FBC-Linear1"), e.STM("FBC-Linear1")
	tab := &Table{
		ID:    "fig12",
		Title: "FBC-Linear1: read/write bursts arriving at each bank",
		Header: []string{"channel", "bank",
			"reads base", "reads McC", "reads STM",
			"writes base", "writes McC", "writes STM"},
	}
	for ch := 0; ch < len(base.Channels); ch++ {
		nb := len(base.Channels[ch].PerBankReadBursts)
		for b := 0; b < nb; b++ {
			tab.Rows = append(tab.Rows, []string{u(uint64(ch)), u(uint64(b)),
				u(base.Channels[ch].PerBankReadBursts[b]),
				u(mcc.Channels[ch].PerBankReadBursts[b]),
				u(st.Channels[ch].PerBankReadBursts[b]),
				u(base.Channels[ch].PerBankWriteBursts[b]),
				u(mcc.Channels[ch].PerBankWriteBursts[b]),
				u(st.Channels[ch].PerBankWriteBursts[b])})
		}
	}
	return tab
}

// RunFig13 reproduces Fig. 13: the sensitivity of the average memory
// access latency error to the temporal partition length, swept from
// 100,000 to 1,000,000 cycles per device class. For each device both the
// mean error and the variance across its traces are reported.
func (e *Env) RunFig13() *Table {
	sizes := []uint64{100000, 200000, 300000, 400000, 500000, 600000, 700000, 800000, 900000, 1000000}
	tab := &Table{
		ID:     "fig13",
		Title:  "Average memory access latency error (%) vs temporal interval size",
		Header: []string{"interval", "CPU", "DPU", "GPU", "VPU", "var CPU", "var DPU", "var GPU", "var VPU"},
	}
	for _, size := range sizes {
		errsByDev := make(map[string][]float64)
		for dev, specs := range workloads.ByDevice() {
			for _, s := range specs {
				ref := e.Baseline(s.Name).AvgLatency
				p, err := core.Build(s.Name, e.Trace(s.Name), partition.TwoLevelTS(size))
				if err != nil {
					panic(err)
				}
				got := dram.Run(core.Synthesize(p, e.Seed, e.synthOpts()...), e.DRAMCfg, e.XbarLat).AvgLatency
				errsByDev[dev] = append(errsByDev[dev], stats.PercentError(got, ref))
			}
		}
		row := []string{u(size)}
		for _, dev := range workloads.Devices() {
			row = append(row, f(stats.Mean(errsByDev[dev]), 2))
		}
		for _, dev := range workloads.Devices() {
			row = append(row, f(stats.Variance(errsByDev[dev]), 2))
		}
		tab.Rows = append(tab.Rows, row)
	}
	return tab
}
