package experiments

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/hrd"
	"repro/internal/partition"
	"repro/internal/profile"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// The §V methodology: traces of the CPU-to-L1 port for SPEC CPU2006
// proxies, replayed in atomic mode through a write-back L1 (varied) plus
// a 256KB 8-way L2 with 64-B blocks and LRU. Mocktails uses temporal
// partitions of 100,000 requests (from STM) with dynamic or fixed-4KB
// spatial partitioning. HRD models reuse at 64B then 4KB with no phases.

// SpecTrace returns (cached) the proxy trace for a SPEC benchmark.
func (e *Env) SpecTrace(name string) trace.Trace {
	return e.specTraces.get(name, func() trace.Trace {
		t, err := workloads.SPECTrace(name)
		if err != nil {
			panic(err)
		}
		return t
	})
}

// SpecClone returns (cached) the Mocktails recreation of a SPEC proxy
// with dynamic (blockSize == 0) or fixed-size spatial partitioning.
func (e *Env) SpecClone(name string, blockSize uint64) trace.Trace {
	cache := &e.specDyn
	if blockSize != 0 {
		cache = &e.spec4K
	}
	return cache.get(name, func() trace.Trace {
		cfg := partition.TwoLevelRequestCount(100000, blockSize)
		syn, _, err := core.Clone(name, e.SpecTrace(name), cfg, e.Seed)
		if err != nil {
			panic(err)
		}
		return syn
	})
}

// SpecHRD returns (cached) the HRD recreation of a SPEC proxy.
func (e *Env) SpecHRD(name string) trace.Trace {
	return e.specHRD.get(name, func() trace.Trace {
		m := hrd.Fit(e.SpecTrace(name))
		return hrd.Synthesize(m, e.Seed)
	})
}

// CacheRun is the result of one trace through one cache configuration.
type CacheRun struct {
	L1, L2    cache.Stats
	Footprint int // distinct 64-B blocks at the L1 port
}

// RunCache replays a trace through an L1 of the given geometry plus the
// default 256KB 8-way L2.
func RunCache(t trace.Trace, l1 cache.Config) CacheRun {
	h, err := cache.NewHierarchy(l1, cache.L2Default())
	if err != nil {
		panic(err)
	}
	h.Run(t)
	out := CacheRun{L1: h.L1.Stats(), Footprint: h.FootprintBlocks()}
	if h.L2 != nil {
		out.L2 = h.L2.Stats()
	}
	return out
}

// RunFig14 reproduces Fig. 14: geometric-mean L1 and L2 miss rates across
// the SPEC proxies for two cache configurations (16KB 2-way and 32KB
// 4-way L1), comparing the baseline, Mocktails (Dynamic), Mocktails
// (4KB) and HRD.
func (e *Env) RunFig14() *Table {
	configs := []struct {
		label string
		cfg   cache.Config
	}{
		{"16KB 2-way", cache.Default64(16<<10, 2)},
		{"32KB 4-way", cache.Default64(32<<10, 4)},
	}
	tab := &Table{
		ID:    "fig14",
		Title: "Cache miss rates (geometric mean across SPEC proxies) for two configurations",
		Header: []string{"config", "level",
			"baseline", "Mocktails(Dynamic)", "Mocktails(4KB)", "HRD"},
	}
	for _, c := range configs {
		var l1 [4][]float64
		var l2 [4][]float64
		for _, name := range workloads.SPECNames() {
			sources := []trace.Trace{
				e.SpecTrace(name),
				e.SpecClone(name, 0),
				e.SpecClone(name, 4096),
				e.SpecHRD(name),
			}
			for i, src := range sources {
				r := RunCache(src, c.cfg)
				l1[i] = append(l1[i], r.L1.MissRate())
				l2[i] = append(l2[i], r.L2.MissRate())
			}
		}
		tab.Rows = append(tab.Rows,
			[]string{c.label, "L1", f(stats.GeoMean(l1[0]), 2), f(stats.GeoMean(l1[1]), 2), f(stats.GeoMean(l1[2]), 2), f(stats.GeoMean(l1[3]), 2)},
			[]string{c.label, "L2", f(stats.GeoMean(l2[0]), 2), f(stats.GeoMean(l2[1]), 2), f(stats.GeoMean(l2[2]), 2), f(stats.GeoMean(l2[3]), 2)})
	}
	return tab
}

// RunFig15 reproduces Fig. 15: L1 miss rates across associativities 2, 4,
// 8 and 16 for a 32KB L1 on six benchmarks, comparing the baseline,
// Mocktails (Dynamic) and HRD. The three paper trends are gobmk
// (falling), libquantum (flat) and zeusmp (rising).
func (e *Env) RunFig15() *Table {
	return e.assocSweep("fig15",
		"32KB L1 miss rate (%) vs associativity",
		func(r CacheRun) float64 { return r.L1.MissRate() }, 2)
}

// RunFig16 reproduces Fig. 16: the number of L1 write-backs for the same
// sweep as Fig. 15.
func (e *Env) RunFig16() *Table {
	return e.assocSweep("fig16",
		"32KB L1 write-backs (thousands) vs associativity",
		func(r CacheRun) float64 { return float64(r.L1.WriteBacks) / 1000 }, 1)
}

func (e *Env) assocSweep(id, title string, metric func(CacheRun) float64, dec int) *Table {
	tab := &Table{
		ID:     id,
		Title:  title,
		Header: []string{"benchmark", "assoc", "baseline", "Mocktails(Dynamic)", "HRD"},
	}
	for _, name := range workloads.Fig15Names() {
		for _, assoc := range []int{2, 4, 8, 16} {
			cfg := cache.Default64(32<<10, assoc)
			rb := RunCache(e.SpecTrace(name), cfg)
			rm := RunCache(e.SpecClone(name, 0), cfg)
			rh := RunCache(e.SpecHRD(name), cfg)
			tab.Rows = append(tab.Rows, []string{name, u(uint64(assoc)),
				f(metric(rb), dec), f(metric(rm), dec), f(metric(rh), dec)})
		}
	}
	return tab
}

// RunFig17 reproduces Fig. 17: the on-disk sizes of the gzip-compressed
// traces versus the Mocktails profiles (dynamic and fixed-4KB spatial
// partitioning) for every SPEC proxy.
func (e *Env) RunFig17() *Table {
	tab := &Table{
		ID:     "fig17",
		Title:  "Trace vs profile sizes (KiB, gzip-compressed)",
		Header: []string{"benchmark", "trace", "Mocktails(Dynamic)", "Mocktails(4KB)", "reduction"},
	}
	var totalTrace, totalDyn float64
	for _, name := range workloads.SPECNames() {
		t := e.SpecTrace(name)
		traceSize := gzTraceSize(t)
		dynSize := profileSize(name, t, 0)
		fixSize := profileSize(name, t, 4096)
		totalTrace += float64(traceSize)
		totalDyn += float64(dynSize)
		red := 100 * (1 - float64(dynSize)/float64(traceSize))
		tab.Rows = append(tab.Rows, []string{name,
			u(uint64(traceSize / 1024)), u(uint64(dynSize / 1024)), u(uint64(fixSize / 1024)),
			f(red, 1) + "%"})
	}
	tab.Notes = append(tab.Notes, fmt.Sprintf(
		"overall: Mocktails(Dynamic) profiles are %.0f%% smaller than gzip traces",
		100*(1-totalDyn/totalTrace)))
	return tab
}

func gzTraceSize(t trace.Trace) int {
	var buf countWriter
	if err := trace.WriteGzip(&buf, t); err != nil {
		panic(err)
	}
	return buf.n
}

func profileSize(name string, t trace.Trace, blockSize uint64) int {
	cfg := partition.TwoLevelRequestCount(100000, blockSize)
	p, err := core.Build(name, t, cfg)
	if err != nil {
		panic(err)
	}
	n, err := profile.EncodedSize(p)
	if err != nil {
		panic(err)
	}
	return n
}

type countWriter struct{ n int }

func (w *countWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}
