package experiments

import (
	"reflect"
	"testing"

	"repro/internal/par"
	"repro/internal/trace"
)

// tablesEqual reports row-for-row equality and fails with the first
// diverging exhibit.
func tablesEqual(t *testing.T, serial, parallel []*Table) {
	t.Helper()
	if len(serial) != len(parallel) {
		t.Fatalf("len(parallel) = %d, want %d", len(parallel), len(serial))
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Fatalf("exhibit %d (%s): parallel table differs from serial", i, serial[i].ID)
		}
	}
}

// TestRunParallelSubsetMatchesSerial is the fast always-on determinism
// check: a handful of cheap exhibits — including pairs that share Env
// caches — through a concurrently shared Env must reproduce the serial
// tables exactly.
func TestRunParallelSubsetMatchesSerial(t *testing.T) {
	ids := []string{"fig2", "fig3", "table1", "table2", "table3", "energy", "characterization", "soc"}

	serialEnv := NewEnv()
	serial := make([]*Table, len(ids))
	for i, id := range ids {
		serial[i] = serialEnv.Run(id)
	}

	parEnv := NewEnv()
	parallel := par.Map(len(ids), 8, func(i int) *Table {
		return parEnv.Run(ids[i])
	})
	tablesEqual(t, serial, parallel)
}

// TestAllParallelMatchesAll is the tentpole acceptance test: the full
// 26-exhibit suite through AllParallel must match All row-for-row. It
// runs the whole evaluation twice, so it is skipped in -short mode.
func TestAllParallelMatchesAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite determinism check skipped in -short mode")
	}
	serial := NewEnv().All()
	parallel := NewEnv().AllParallel(8)
	tablesEqual(t, serial, parallel)
}

// TestEnvSingleflight asserts the property the concurrent Env relies on:
// goroutines racing on the same key all get the one cached value, not
// separate generations.
func TestEnvSingleflight(t *testing.T) {
	env := NewEnv()
	heads := par.Map(8, 8, func(int) *trace.Request {
		tr := env.Trace("HEVC1")
		if len(tr) == 0 {
			t.Error("empty trace")
			return nil
		}
		return &tr[0]
	})
	for _, h := range heads[1:] {
		if h != heads[0] {
			t.Fatal("concurrent Trace() calls returned distinct slices for the same name")
		}
	}
}
