package experiments

import (
	"testing"
)

func TestCharacterizationTable(t *testing.T) {
	tab := NewEnv().RunCharacterization()
	if len(tab.Rows) != 18 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Device-class sanity: the VPU is the most read-light (writes
	// dominate decode output) and the DPU is read-heavy (display
	// refresh).
	shares := map[string]float64{}
	for _, row := range tab.Rows {
		shares[row[0]] = parseF(t, row[3])
	}
	if shares["HEVC1"] >= shares["FBC-Linear1"] {
		t.Errorf("HEVC read share %.0f not below FBC %.0f", shares["HEVC1"], shares["FBC-Linear1"])
	}
}

func TestKOrderAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tab := NewEnv().RunAblationKOrder()
	if len(tab.Rows) != 4 || len(tab.Header) != 5 {
		t.Fatalf("table shape %dx%d", len(tab.Rows), len(tab.Header))
	}
	// The periodic tiled scan must improve (or at worst stay equal)
	// from k=1 to k=4.
	for _, row := range tab.Rows {
		if row[0] != "FBC-Tiled1" {
			continue
		}
		k1, k4 := parseF(t, row[1]), parseF(t, row[4])
		if k4 > k1 {
			t.Errorf("FBC-Tiled1: k=4 error %.2f worse than k=1 %.2f", k4, k1)
		}
	}
}

func TestEnergyExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tab := NewEnv().RunEnergy()
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if e := parseF(t, row[6]); e > 5 {
			t.Errorf("%s: clone energy error %.2f%% > 5%%", row[1], e)
		}
		if v := parseF(t, row[2]); v <= 0 {
			t.Errorf("%s: non-positive energy", row[1])
		}
	}
}

func TestPolicyAblationPreservesRanking(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tab := NewEnv().RunAblationPolicy()
	if len(tab.Rows) != 9 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// For every benchmark, LRU <= FIFO in both baseline and clone
	// (these workloads have recency-friendly reuse).
	byBench := map[string]map[string][2]float64{}
	for _, row := range tab.Rows {
		if byBench[row[0]] == nil {
			byBench[row[0]] = map[string][2]float64{}
		}
		byBench[row[0]][row[1]] = [2]float64{parseF(t, row[2]), parseF(t, row[3])}
	}
	for bench, pol := range byBench {
		for i, label := range []string{"baseline", "clone"} {
			if pol["LRU"][i] > pol["FIFO"][i] {
				t.Errorf("%s %s: LRU %.2f worse than FIFO %.2f", bench, label, pol["LRU"][i], pol["FIFO"][i])
			}
		}
	}
}

func TestSoCExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tab := NewEnv().RunSoC()
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if e := parseF(t, row[3]); e > 15 {
			t.Errorf("SoC metric %s error %.2f%% > 15%%", row[0], e)
		}
	}
}
