package experiments

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/korder"
	"repro/internal/partition"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// RunCharacterization extends Table II with the quantitative trace
// characterisation behind the paper's motivation: the device classes
// differ in volume, mix, spatial regularity and burstiness.
func (e *Env) RunCharacterization() *Table {
	tab := &Table{
		ID:    "characterization",
		Title: "Trace characterisation (volume, mix, spatial and temporal behaviour)",
		Header: []string{"name", "device", "reqs", "read%", "MB", "fp4K",
			"dom-stride", "stride%", "gapCV"},
	}
	for _, s := range workloads.Catalog() {
		r := analysis.Characterize(e.Trace(s.Name))
		tab.Rows = append(tab.Rows, []string{
			s.Name, s.Device,
			u(uint64(r.Requests)),
			f(r.ReadShare()*100, 0),
			f(float64(r.Bytes)/(1<<20), 1),
			u(uint64(r.Footprint4K)),
			fmt.Sprintf("%d", r.DominantStride),
			f(r.DominantStrideShare*100, 0),
			f(r.GapCV, 1),
		})
	}
	return tab
}

// RunAblationKOrder sweeps the Markov history length of the leaf models
// (an extension; the paper's McC is order 1) on the traces where order-1
// struggles most: strictly periodic access patterns.
func (e *Env) RunAblationKOrder() *Table {
	names := []string{"FBC-Tiled1", "HEVC1", "Crypto1", "T-Rex1"}
	orders := []int{1, 2, 3, 4}
	tab := &Table{
		ID:     "ablation-korder",
		Title:  "Row-hit error (%) vs Markov history length k (k=1 is the paper's McC)",
		Header: []string{"trace", "k=1", "k=2", "k=3", "k=4"},
	}
	for _, name := range names {
		row := []string{name}
		for _, k := range orders {
			p, err := korder.Build(name, e.Trace(name), partition.TwoLevelTS(e.IntervalCycles), k)
			if err != nil {
				panic(err)
			}
			r := dram.Run(korder.Synthesize(p, e.Seed), e.DRAMCfg, e.XbarLat)
			row = append(row, f(e.rowHitError(name, r), 2))
		}
		tab.Rows = append(tab.Rows, row)
	}
	tab.Notes = append(tab.Notes,
		"higher k captures fixed-length stride runs (e.g. the tiled DPU scan) at the cost of larger models")
	return tab
}

// RunEnergy reports the estimated DRAM energy of each device's
// representative trace against its Mocktails clone: synthetic streams
// are only useful for energy studies if they preserve the row-locality
// and volume mix that energy depends on.
func (e *Env) RunEnergy() *Table {
	params := dram.DefaultEnergy()
	tab := &Table{
		ID:    "energy",
		Title: "Estimated DRAM energy (uJ): real trace vs Mocktails clone",
		Header: []string{"device", "trace",
			"real total", "clone total", "real act", "clone act", "err%"},
	}
	for _, dev := range workloads.Devices() {
		s := workloads.ByDevice()[dev][0]
		base := e.Baseline(s.Name).Energy(params)
		clone := e.McC(s.Name).Energy(params)
		tab.Rows = append(tab.Rows, []string{dev, s.Name,
			f(base.Total()/1e6, 1), f(clone.Total()/1e6, 1),
			f(base.Activate/1e6, 1), f(clone.Activate/1e6, 1),
			f(stats.PercentError(clone.Total(), base.Total()), 2)})
	}
	tab.Notes = append(tab.Notes, "DRAMPower-style event energies; see dram.DefaultEnergy for parameters")
	return tab
}

// RunAblationPolicy runs the §VI replacement-policy use case: three SPEC
// proxies under LRU, FIFO and Random L1 replacement, baseline versus
// Mocktails (Dynamic) clone. A useful clone must preserve the policy
// ranking.
func (e *Env) RunAblationPolicy() *Table {
	tab := &Table{
		ID:     "ablation-policy",
		Title:  "32KB 4-way L1 miss rate (%) by replacement policy: baseline vs clone",
		Header: []string{"benchmark", "policy", "baseline", "Mocktails(Dynamic)"},
	}
	for _, name := range []string{"gobmk", "omnetpp", "libquantum"} {
		base := e.SpecTrace(name)
		clone := e.SpecClone(name, 0)
		for _, pol := range []cache.Policy{cache.LRU, cache.FIFO, cache.Random} {
			cfg := cache.Default64(32<<10, 4)
			cfg.Policy = pol
			cfg.Seed = e.Seed
			tab.Rows = append(tab.Rows, []string{name, pol.String(),
				f(runL1(base, cfg), 2), f(runL1(clone, cfg), 2)})
		}
	}
	tab.Notes = append(tab.Notes, "replacement-policy exploration is a §VI use case for Mocktails")
	return tab
}

func runL1(t trace.Trace, cfg cache.Config) float64 {
	h, err := cache.NewHierarchy(cfg, cache.L2Default())
	if err != nil {
		panic(err)
	}
	h.Run(t)
	return h.L1.Stats().MissRate()
}

// RunSoC runs the shared-memory SoC mix (the soc_mix example as an
// experiment): three devices' synthetic streams merged into one memory
// system, compared with the merged original traces.
func (e *Env) RunSoC() *Table {
	names := []string{"T-Rex1", "HEVC1", "FBC-Linear1"}
	var real, mock []trace.Source
	for i, name := range names {
		tr := e.Trace(name)
		real = append(real, trace.NewReplayer(tr))
		p, err := core.Build(name, tr, partition.TwoLevelTS(e.IntervalCycles))
		if err != nil {
			panic(err)
		}
		mock = append(mock, core.Synthesize(p, e.Seed+uint64(i), e.synthOpts()...))
	}
	base := dram.Run(trace.Merge(real...), e.DRAMCfg, e.XbarLat)
	syn := dram.Run(trace.Merge(mock...), e.DRAMCfg, e.XbarLat)
	tab := &Table{
		ID:     "soc",
		Title:  "Shared-memory SoC (GPU+VPU+DPU): merged real traces vs merged clones",
		Header: []string{"metric", "real", "mocktails", "err%"},
	}
	add := func(name string, r, g float64) {
		tab.Rows = append(tab.Rows, []string{name, f(r, 2), f(g, 2),
			f(stats.PercentError(g, r), 2)})
	}
	add("read row hits", float64(base.ReadRowHits()), float64(syn.ReadRowHits()))
	add("write row hits", float64(base.WriteRowHits()), float64(syn.WriteRowHits()))
	add("avg read queue", base.AvgReadQueueLen(), syn.AvgReadQueueLen())
	add("avg write queue", base.AvgWriteQueueLen(), syn.AvgWriteQueueLen())
	add("avg latency", base.AvgLatency, syn.AvgLatency)
	return tab
}
