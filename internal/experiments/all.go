package experiments

// All runs every experiment in paper order and returns the tables.
func (e *Env) All() []*Table {
	return []*Table{
		e.RunFig2(),
		e.RunFig3(),
		e.RunTable1(),
		e.RunTable2(),
		e.RunTable3(),
		e.RunFig6(),
		e.RunFig7(),
		e.RunFig8(),
		e.RunFig9(),
		e.RunFig10(),
		e.RunFig11(),
		e.RunFig12(),
		e.RunFig13(),
		e.RunFig14(),
		e.RunFig15(),
		e.RunFig16(),
		e.RunFig17(),
		e.RunAblationSpatial(),
		e.RunAblationOrder(),
		e.RunAblationPrivacy(),
		e.RunChargeCache(),
		e.RunCharacterization(),
		e.RunAblationKOrder(),
		e.RunEnergy(),
		e.RunAblationPolicy(),
		e.RunSoC(),
	}
}

// Run executes the experiment with the given ID ("fig6", "table2", ...)
// and returns its table, or nil when the ID is unknown.
func (e *Env) Run(id string) *Table {
	switch id {
	case "fig2":
		return e.RunFig2()
	case "fig3":
		return e.RunFig3()
	case "table1":
		return e.RunTable1()
	case "table2":
		return e.RunTable2()
	case "table3":
		return e.RunTable3()
	case "fig6":
		return e.RunFig6()
	case "fig7":
		return e.RunFig7()
	case "fig8":
		return e.RunFig8()
	case "fig9":
		return e.RunFig9()
	case "fig10":
		return e.RunFig10()
	case "fig11":
		return e.RunFig11()
	case "fig12":
		return e.RunFig12()
	case "fig13":
		return e.RunFig13()
	case "fig14":
		return e.RunFig14()
	case "fig15":
		return e.RunFig15()
	case "fig16":
		return e.RunFig16()
	case "fig17":
		return e.RunFig17()
	case "ablation-spatial":
		return e.RunAblationSpatial()
	case "ablation-order":
		return e.RunAblationOrder()
	case "ablation-privacy":
		return e.RunAblationPrivacy()
	case "chargecache":
		return e.RunChargeCache()
	case "characterization":
		return e.RunCharacterization()
	case "ablation-korder":
		return e.RunAblationKOrder()
	case "energy":
		return e.RunEnergy()
	case "ablation-policy":
		return e.RunAblationPolicy()
	case "soc":
		return e.RunSoC()
	default:
		return nil
	}
}

// IDs lists every experiment ID: the paper's exhibits in paper order,
// then the repository's extension studies (ablations, the §VI privacy
// extension, and the §VI ChargeCache case study).
func IDs() []string {
	return []string{
		"fig2", "fig3", "table1", "table2", "table3",
		"fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
		"fig14", "fig15", "fig16", "fig17",
		"ablation-spatial", "ablation-order", "ablation-privacy", "chargecache",
		"characterization", "ablation-korder", "energy", "ablation-policy", "soc",
	}
}
