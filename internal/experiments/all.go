package experiments

import "repro/internal/par"

// exhibit binds an experiment ID to its runner. The registry below is the
// single source of truth for experiment identity and order: All,
// AllParallel, Run and IDs all derive from it, so adding an exhibit is a
// one-line change.
type exhibit struct {
	id  string
	run func(*Env) *Table
}

// registry lists every experiment: the paper's exhibits in paper order,
// then the repository's extension studies (ablations, the §VI privacy
// extension, and the §VI ChargeCache case study).
var registry = []exhibit{
	{"fig2", (*Env).RunFig2},
	{"fig3", (*Env).RunFig3},
	{"table1", (*Env).RunTable1},
	{"table2", (*Env).RunTable2},
	{"table3", (*Env).RunTable3},
	{"fig6", (*Env).RunFig6},
	{"fig7", (*Env).RunFig7},
	{"fig8", (*Env).RunFig8},
	{"fig9", (*Env).RunFig9},
	{"fig10", (*Env).RunFig10},
	{"fig11", (*Env).RunFig11},
	{"fig12", (*Env).RunFig12},
	{"fig13", (*Env).RunFig13},
	{"fig14", (*Env).RunFig14},
	{"fig15", (*Env).RunFig15},
	{"fig16", (*Env).RunFig16},
	{"fig17", (*Env).RunFig17},
	{"ablation-spatial", (*Env).RunAblationSpatial},
	{"ablation-order", (*Env).RunAblationOrder},
	{"ablation-privacy", (*Env).RunAblationPrivacy},
	{"chargecache", (*Env).RunChargeCache},
	{"characterization", (*Env).RunCharacterization},
	{"ablation-korder", (*Env).RunAblationKOrder},
	{"energy", (*Env).RunEnergy},
	{"ablation-policy", (*Env).RunAblationPolicy},
	{"soc", (*Env).RunSoC},
}

// All runs every experiment in paper order and returns the tables.
func (e *Env) All() []*Table {
	tables := make([]*Table, len(registry))
	for i, x := range registry {
		tables[i] = x.run(e)
	}
	return tables
}

// AllParallel runs every experiment across the given number of workers
// (<= 0 selects the MOCKTAILS_PARALLELISM / GOMAXPROCS default) and
// returns the tables in paper order, row-for-row identical to All: every
// experiment derives its data purely from the Env seed, the shared caches
// memoise values that do not depend on who computed them, and results are
// committed by registry index.
func (e *Env) AllParallel(workers int) []*Table {
	return par.Map(len(registry), workers, func(i int) *Table {
		return registry[i].run(e)
	})
}

// Run executes the experiment with the given ID ("fig6", "table2", ...)
// and returns its table, or nil when the ID is unknown.
func (e *Env) Run(id string) *Table {
	for _, x := range registry {
		if x.id == id {
			return x.run(e)
		}
	}
	return nil
}

// IDs lists every experiment ID in paper order.
func IDs() []string {
	ids := make([]string, len(registry))
	for i, x := range registry {
		ids[i] = x.id
	}
	return ids
}
