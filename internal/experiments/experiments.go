// Package experiments reproduces every table and figure of the paper's
// evaluation (§III examples, §IV validation, §V CPU comparison). Each
// RunX function regenerates the data behind one exhibit and returns it as
// printable tables; the cmd/experiments binary and the repository's
// benchmarks drive these functions.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/partition"
	"repro/internal/profile"
	"repro/internal/stm"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Table is a printable experiment result.
type Table struct {
	ID     string // e.g. "fig6"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(t.Header)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// memo is a concurrency-safe, singleflight-style cache: the first caller
// of a key computes the value while later callers of the same key block
// until it is ready, and distinct keys compute in parallel. This is what
// lets AllParallel share one Env across workers — experiments that reuse
// another exhibit's simulation wait for it instead of recomputing it.
type memo[V any] struct {
	mu sync.Mutex
	m  map[string]*memoEntry[V]
}

type memoEntry[V any] struct {
	once sync.Once
	v    V
}

// get returns the memoised value for key, computing it at most once.
// A compute that panics poisons the entry (the once is spent), matching
// the fail-fast behaviour of the serial accessors.
func (c *memo[V]) get(key string, compute func() V) V {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[string]*memoEntry[V])
	}
	e := c.m[key]
	if e == nil {
		e = &memoEntry[V]{}
		c.m[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.v = compute() })
	return e.v
}

// Env caches traces, profiles and simulation results so that running all
// the figures does not repeat work. Every method is safe for concurrent
// use: the caches are singleflight memos, so one Env can be shared by
// All and AllParallel alike. Zero value is not usable; call NewEnv.
type Env struct {
	// DRAMCfg is the Table III memory configuration.
	DRAMCfg dram.Config
	// XbarLat is the interconnect latency in cycles.
	XbarLat uint64
	// Seed seeds every synthesis.
	Seed uint64
	// IntervalCycles is the 2L-TS temporal partition length.
	IntervalCycles uint64
	// SynthWorkers is the chunk-refill worker count handed to every
	// Mocktails synthesis; <= 1 generates serially. Any value produces
	// identical tables, because synthesis output is bit-identical for
	// every worker count.
	SynthWorkers int

	traces memo[trace.Trace]
	base   memo[dram.Result]
	mcc    memo[dram.Result]
	stmRes memo[dram.Result]

	specTraces memo[trace.Trace]
	specDyn    memo[trace.Trace]
	spec4K     memo[trace.Trace]
	specHRD    memo[trace.Trace]
}

// NewEnv returns an environment with the paper's defaults.
func NewEnv() *Env {
	return &Env{
		DRAMCfg:        dram.Default(),
		XbarLat:        20,
		Seed:           42,
		IntervalCycles: 500000,
	}
}

// synthOpts returns the synthesis options implied by the environment.
func (e *Env) synthOpts() []core.SynthOption {
	if e.SynthWorkers <= 1 {
		return nil
	}
	return []core.SynthOption{core.SynthWorkers(e.SynthWorkers)}
}

// Trace returns (generating and caching) the named Table II proxy trace.
func (e *Env) Trace(name string) trace.Trace {
	return e.traces.get(name, func() trace.Trace {
		s, err := workloads.Find(name)
		if err != nil {
			panic(err)
		}
		return s.Gen()
	})
}

// Baseline simulates the original trace through the memory system.
func (e *Env) Baseline(name string) dram.Result {
	return e.base.get(name, func() dram.Result {
		return dram.Run(trace.NewReplayer(e.Trace(name)), e.DRAMCfg, e.XbarLat)
	})
}

// McC simulates the Mocktails 2L-TS (McC) recreation of the trace.
func (e *Env) McC(name string) dram.Result {
	return e.mcc.get(name, func() dram.Result {
		p, err := core.Build(name, e.Trace(name), partition.TwoLevelTS(e.IntervalCycles))
		if err != nil {
			panic(err)
		}
		return dram.Run(core.Synthesize(p, e.Seed, e.synthOpts()...), e.DRAMCfg, e.XbarLat)
	})
}

// STM simulates the 2L-TS (STM) baseline recreation of the trace.
func (e *Env) STM(name string) dram.Result {
	return e.stmRes.get(name, func() dram.Result {
		p, err := stm.Build(name, e.Trace(name), partition.TwoLevelTS(e.IntervalCycles))
		if err != nil {
			panic(err)
		}
		return dram.Run(stm.Synthesize(p, e.Seed), e.DRAMCfg, e.XbarLat)
	})
}

// Profile builds (uncached) the Mocktails profile of a Table II trace.
func (e *Env) Profile(name string) *profile.Profile {
	p, err := core.Build(name, e.Trace(name), partition.TwoLevelTS(e.IntervalCycles))
	if err != nil {
		panic(err)
	}
	return p
}

// f formats a float with the given decimals.
func f(v float64, dec int) string { return fmt.Sprintf("%.*f", dec, v) }

// u formats an unsigned count.
func u(v uint64) string { return fmt.Sprintf("%d", v) }
