// Package experiments reproduces every table and figure of the paper's
// evaluation (§III examples, §IV validation, §V CPU comparison). Each
// RunX function regenerates the data behind one exhibit and returns it as
// printable tables; the cmd/experiments binary and the repository's
// benchmarks drive these functions.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/partition"
	"repro/internal/profile"
	"repro/internal/stm"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Table is a printable experiment result.
type Table struct {
	ID     string // e.g. "fig6"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(t.Header)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Env caches traces, profiles and simulation results so that running all
// the figures does not repeat work. Zero value is not usable; call NewEnv.
type Env struct {
	// DRAMCfg is the Table III memory configuration.
	DRAMCfg dram.Config
	// XbarLat is the interconnect latency in cycles.
	XbarLat uint64
	// Seed seeds every synthesis.
	Seed uint64
	// IntervalCycles is the 2L-TS temporal partition length.
	IntervalCycles uint64

	traces map[string]trace.Trace
	base   map[string]dram.Result
	mcc    map[string]dram.Result
	stmRes map[string]dram.Result

	specTraces map[string]trace.Trace
	specDyn    map[string]trace.Trace
	spec4K     map[string]trace.Trace
	specHRD    map[string]trace.Trace
}

// NewEnv returns an environment with the paper's defaults.
func NewEnv() *Env {
	return &Env{
		DRAMCfg:        dram.Default(),
		XbarLat:        20,
		Seed:           42,
		IntervalCycles: 500000,
		traces:         make(map[string]trace.Trace),
		base:           make(map[string]dram.Result),
		mcc:            make(map[string]dram.Result),
		stmRes:         make(map[string]dram.Result),
		specTraces:     make(map[string]trace.Trace),
		specDyn:        make(map[string]trace.Trace),
		spec4K:         make(map[string]trace.Trace),
		specHRD:        make(map[string]trace.Trace),
	}
}

// Trace returns (generating and caching) the named Table II proxy trace.
func (e *Env) Trace(name string) trace.Trace {
	if t, ok := e.traces[name]; ok {
		return t
	}
	s, err := workloads.Find(name)
	if err != nil {
		panic(err)
	}
	t := s.Gen()
	e.traces[name] = t
	return t
}

// Baseline simulates the original trace through the memory system.
func (e *Env) Baseline(name string) dram.Result {
	if r, ok := e.base[name]; ok {
		return r
	}
	r := dram.Run(trace.NewReplayer(e.Trace(name)), e.DRAMCfg, e.XbarLat)
	e.base[name] = r
	return r
}

// McC simulates the Mocktails 2L-TS (McC) recreation of the trace.
func (e *Env) McC(name string) dram.Result {
	if r, ok := e.mcc[name]; ok {
		return r
	}
	p, err := core.Build(name, e.Trace(name), partition.TwoLevelTS(e.IntervalCycles))
	if err != nil {
		panic(err)
	}
	r := dram.Run(core.Synthesize(p, e.Seed), e.DRAMCfg, e.XbarLat)
	e.mcc[name] = r
	return r
}

// STM simulates the 2L-TS (STM) baseline recreation of the trace.
func (e *Env) STM(name string) dram.Result {
	if r, ok := e.stmRes[name]; ok {
		return r
	}
	p, err := stm.Build(name, e.Trace(name), partition.TwoLevelTS(e.IntervalCycles))
	if err != nil {
		panic(err)
	}
	r := dram.Run(stm.Synthesize(p, e.Seed), e.DRAMCfg, e.XbarLat)
	e.stmRes[name] = r
	return r
}

// Profile builds (uncached) the Mocktails profile of a Table II trace.
func (e *Env) Profile(name string) *profile.Profile {
	p, err := core.Build(name, e.Trace(name), partition.TwoLevelTS(e.IntervalCycles))
	if err != nil {
		panic(err)
	}
	return p
}

// f formats a float with the given decimals.
func f(v float64, dec int) string { return fmt.Sprintf("%.*f", dec, v) }

// u formats an unsigned count.
func u(v uint64) string { return fmt.Sprintf("%d", v) }
