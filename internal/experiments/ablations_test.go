package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestAblationSpatialStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tab := NewEnv().RunAblationSpatial()
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Dynamic spatial partitioning must beat no spatial partitioning for
	// most device classes (a single leaf per interval blurs the
	// concurrent address streams), and must beat fixed 4-KB blocks for
	// the VPU whose sparse sub-4KB motifs motivated the scheme (Fig. 2).
	beatsNone := 0
	for _, row := range tab.Rows {
		dyn := parseF(t, row[1])
		fixed := parseF(t, row[2])
		none := parseF(t, row[3])
		if dyn < none {
			beatsNone++
		}
		if row[0] == "VPU" && dyn >= fixed {
			t.Errorf("VPU: dynamic (%.2f) not better than fixed-4KB (%.2f)", dyn, fixed)
		}
	}
	if beatsNone < 3 {
		t.Errorf("dynamic beats no-spatial on only %d/4 devices", beatsNone)
	}
}

func TestAblationOrderStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tab := NewEnv().RunAblationOrder()
	if len(tab.Rows) != 4 || len(tab.Header) != 3 {
		t.Fatalf("table shape: %d rows, %d cols", len(tab.Rows), len(tab.Header))
	}
	for _, row := range tab.Rows {
		for _, cell := range row[1:] {
			if v := parseF(t, cell); v < 0 || v > 100 {
				t.Errorf("implausible error %v in %v", v, row)
			}
		}
	}
}

func TestAblationPrivacyMonotoneTrend(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tab := NewEnv().RunAblationPrivacy()
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// The strongest noise must hurt more than no noise, summed over all
	// traces (individual rows can be noisy).
	var clean, noisy float64
	for _, row := range tab.Rows {
		clean += privacyCell(t, row[1])
		noisy += privacyCell(t, row[len(row)-1])
	}
	if noisy <= clean {
		t.Errorf("strong noise total error %.1f not worse than no noise %.1f", noisy, clean)
	}
}

// privacyCell parses "rowErr/latErr" and returns the sum.
func privacyCell(t *testing.T, s string) float64 {
	t.Helper()
	parts := strings.Split(s, "/")
	if len(parts) != 2 {
		t.Fatalf("bad cell %q", s)
	}
	a, err := strconv.ParseFloat(parts[0], 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		t.Fatal(err)
	}
	return a + b
}

func TestChargeCacheStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tab := NewEnv().RunChargeCache()
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		real := parseF(t, row[2])
		clone := parseF(t, row[3])
		// The clone's predicted improvement should be in the ballpark of
		// the real trace's (within 3 percentage points).
		if d := real - clone; d > 3 || d < -3 {
			t.Errorf("%s: clone predicts %.2f%%, real %.2f%%", row[1], clone, real)
		}
	}
}

func TestRowHitErrorZeroForBaseline(t *testing.T) {
	e := NewEnv()
	base := e.Baseline("Crypto1")
	if err := e.rowHitError("Crypto1", base); err != 0 {
		t.Errorf("baseline vs itself error = %v", err)
	}
}
